#!/bin/sh
# The repository's static-check gate, run identically by CI and locally:
#   1. gofmt       — formatting, whole tree
#   2. go vet      — the standard suspicious-construct checks
#   3. rfclint     — the determinism invariants (see DESIGN.md,
#                    "Determinism invariants"): the per-function rules (no
#                    wall-clock/math-rand in deterministic packages, no
#                    order-sensitive map ranges, no rng.Split in parallel
#                    workers, no duplicated StringCoord coordinates) plus
#                    the interprocedural passes (handler-purity,
#                    lock-discipline, overlay-invalidate) over the whole
#                    call graph. The run emits the versioned JSON report,
#                    filters it through the checked-in (empty) baseline,
#                    and a separate parse step re-asserts the report is
#                    clean — so a silent output regression in rfclint
#                    cannot green the gate.
#
# Usage: scripts/lint.sh
# Exits non-zero on the first failing check.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "lint.sh: gofmt needed:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...

report=$(mktemp)
trap 'rm -f "$report"' EXIT
status=0
go run ./cmd/rfclint -json -baseline lint-baseline.json ./... >"$report" || status=$?

# Parse step: the gate passes only if the report is well-formed, versioned,
# and carries zero non-baselined findings.
if ! grep -q '"version": "rfclos.lint/1"' "$report"; then
	echo "lint.sh: rfclint did not produce a versioned JSON report (exit $status):" >&2
	cat "$report" >&2
	exit 1
fi
if ! grep -q '"findings": \[\]' "$report"; then
	echo "lint.sh: rfclint findings not covered by lint-baseline.json (exit $status):" >&2
	cat "$report" >&2
	exit 1
fi
if [ "$status" -ne 0 ]; then
	# Findings would have been caught above; this is a stale baseline (3)
	# or an analysis failure (2).
	echo "lint.sh: rfclint exited $status" >&2
	exit "$status"
fi
