#!/bin/sh
# Benchmarks the experiment machinery and appends datapoints to
# BENCH_engine.json at the repo root:
#   - parallel experiment engine: the Figure 8 sweep once with -workers 1
#     and once with -workers <nproc>, checking the two reports are
#     byte-identical (times, speedup, core count), and
#   - unified cycle engine: simcore packet throughput in simulated
#     cycles/sec (BenchmarkEngineCycles).
#
# Usage: scripts/bench.sh [reps] [cycles]
set -eu
cd "$(dirname "$0")/.."

reps=${1:-2}
cycles=${2:-2000}
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

bin=$(mktemp -d)/rfcpaper
go build -o "$bin" ./cmd/rfcpaper

now() { date +%s.%N; }

run_sweep() { # $1 = workers, $2 = output file
	"$bin" -exhibit fig8 -scale small -reps "$reps" -cycles "$cycles" \
		-workers "$1" -quiet >"$2"
}

out1=$(mktemp) outN=$(mktemp)
t0=$(now); run_sweep 1 "$out1"; t1=$(now)
serial=$(awk "BEGIN{printf \"%.3f\", $t1 - $t0}")
t0=$(now); run_sweep "$cores" "$outN"; t1=$(now)
parallel=$(awk "BEGIN{printf \"%.3f\", $t1 - $t0}")

if ! cmp -s "$out1" "$outN"; then
	echo "bench.sh: FATAL: workers=1 and workers=$cores reports differ" >&2
	exit 1
fi
rm -f "$out1" "$outN"

speedup=$(awk "BEGIN{printf \"%.2f\", $serial / $parallel}")
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# Simcore packet throughput: simulated cycles per wall-clock second.
cps=$(go test -run '^$' -bench BenchmarkEngineCycles -benchtime 2s ./internal/simcore/ |
	awk '/cycles\/sec/ { print $(NF-1) }')
: "${cps:?bench.sh: BenchmarkEngineCycles produced no cycles/sec metric}"

append_point() { # $1 = JSON object line
	if [ ! -f BENCH_engine.json ]; then
		printf '[\n%s\n]\n' "$1" >BENCH_engine.json
	else
		# Drop the closing bracket, add a comma to the last entry, re-close.
		awk -v point="$1" '
			{ lines[NR] = $0 }
			END {
				while (NR > 0 && lines[NR] !~ /\]/) NR--
				for (i = 1; i < NR; i++) print (i == NR - 1 ? lines[i] "," : lines[i])
				print point
				print "]"
			}' BENCH_engine.json >BENCH_engine.json.tmp
		mv BENCH_engine.json.tmp BENCH_engine.json
	fi
}

append_point "  {\"date\": \"$date\", \"exhibit\": \"fig8\", \"reps\": $reps, \"cycles\": $cycles, \"cores\": $cores, \"serial_s\": $serial, \"parallel_s\": $parallel, \"speedup\": $speedup}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"simcore-engine\", \"cycles_per_sec\": $cps}"

echo "fig8 x$reps reps @ $cycles cycles: serial ${serial}s, parallel(${cores}) ${parallel}s, speedup ${speedup}x"
echo "simcore engine: $cps simulated cycles/sec"
