#!/bin/sh
# Benchmarks the experiment machinery and appends datapoints to
# BENCH_engine.json at the repo root:
#   - parallel experiment engine: the Figure 8 sweep once with -workers 1
#     and once with -workers <nproc>, checking the two reports are
#     byte-identical (times, speedup, core count), and
#   - unified cycle engine: simcore packet throughput in simulated
#     cycles/sec (BenchmarkEngineCycles), and
#   - shard merging: the same Figure 8 sweep split -shard 0/2 + 1/2,
#     merged with rfcmerge, checked byte-identical to the unsharded
#     report, with the merge throughput (MB/s of partial JSON) recorded, and
#   - determinism lint gate: wall time of a full-tree rfclint run (the
#     scripts/lint.sh CI step's dominant cost), from a prebuilt binary so
#     compile time is excluded, and
#   - serving layer: cached GET /v1/path throughput in req/sec through the
#     full HTTP stack (BenchmarkCachedPath: in-process rfcd + Go client), and
#   - succinct route index: build time, bytes per leaf-pair (dense = 1.0)
#     and MinTurn lookup latency on a 4096-leaf XGFT
#     (BenchmarkTurnIndexBuild / BenchmarkTurnIndexLookup), and
#   - compressed cover sets: UpDown.Rebuild wall time plus compressed vs
#     plain-bitset cover bytes on the same XGFT (BenchmarkCoverBuild), and
#   - CSR level store: XGFT wiring time through the level emitter and the
#     sealed store's bytes next to the pre-refactor [][]int32 arena cost
#     model, at 64K and 512K leaves (BenchmarkTopologyBuild), and
#   - streaming exports: sealed CSR-direct link streaming rate at 64K
#     leaves (BenchmarkExportEdges, links/s), and
#   - flow-level solver: max-min-fair solve throughput on a 64K-leaf
#     uniform matrix, 262,144 flows (BenchmarkFlowSolve, flows/s).
#
# Usage: scripts/bench.sh [reps] [cycles]
set -eu
cd "$(dirname "$0")/.."

reps=${1:-2}
cycles=${2:-2000}
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

bin=$(mktemp -d)/rfcpaper
go build -o "$bin" ./cmd/rfcpaper

now() { date +%s.%N; }

run_sweep() { # $1 = workers, $2 = output file
	"$bin" -exhibit fig8 -scale small -reps "$reps" -cycles "$cycles" \
		-workers "$1" -quiet >"$2"
}

out1=$(mktemp) outN=$(mktemp)
t0=$(now); run_sweep 1 "$out1"; t1=$(now)
serial=$(awk "BEGIN{printf \"%.3f\", $t1 - $t0}")
t0=$(now); run_sweep "$cores" "$outN"; t1=$(now)
parallel=$(awk "BEGIN{printf \"%.3f\", $t1 - $t0}")

if ! cmp -s "$out1" "$outN"; then
	echo "bench.sh: FATAL: workers=1 and workers=$cores reports differ" >&2
	exit 1
fi

# Shard-merge throughput: split the same sweep 2 ways, merge the partial
# JSON reports, and require the merged text to match the unsharded run.
merge_bin=$(dirname "$bin")/rfcmerge
go build -o "$merge_bin" ./cmd/rfcmerge
parts=$(mktemp -d)
"$bin" -exhibit fig8 -scale small -reps "$reps" -cycles "$cycles" \
	-shard 0/2 -out "$parts" -quiet
"$bin" -exhibit fig8 -scale small -reps "$reps" -cycles "$cycles" \
	-shard 1/2 -out "$parts" -quiet
part_bytes=$(cat "$parts"/fig8.shard*.json | wc -c)
merged=$(mktemp)
t0=$(now)
"$merge_bin" -quiet "$parts"/fig8.shard0-of-2.json "$parts"/fig8.shard1-of-2.json >"$merged"
t1=$(now)
merge_s=$(awk "BEGIN{printf \"%.4f\", $t1 - $t0}")
merge_mbps=$(awk "BEGIN{printf \"%.1f\", $part_bytes / 1e6 / $merge_s}")
if ! cmp -s "$out1" "$merged"; then
	echo "bench.sh: FATAL: merged sharded report differs from unsharded run" >&2
	exit 1
fi
rm -rf "$parts" "$merged" "$out1" "$outN"

speedup=$(awk "BEGIN{printf \"%.2f\", $serial / $parallel}")
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# Determinism lint: a clean full-tree run is required (any finding fails
# the bench, matching the CI gate) and its wall time recorded.
lint_bin=$(dirname "$bin")/rfclint
go build -o "$lint_bin" ./cmd/rfclint
t0=$(now)
lint_out=$("$lint_bin" ./...)
t1=$(now)
lint_s=$(awk "BEGIN{printf \"%.3f\", $t1 - $t0}")
lint_pkgs=$(printf '%s\n' "$lint_out" | awk '/packages clean/ { print $2 }')
: "${lint_pkgs:?bench.sh: rfclint produced no all-clear summary}"

# Simcore packet throughput: simulated cycles per wall-clock second.
cps=$(go test -run '^$' -bench BenchmarkEngineCycles -benchtime 2s ./internal/simcore/ |
	awk '/cycles\/sec/ { print $(NF-1) }')
: "${cps:?bench.sh: BenchmarkEngineCycles produced no cycles/sec metric}"

# Serving layer: cached path-query throughput over HTTP (warm cache, so
# this measures the route index + JSON + HTTP stack, not topology builds).
rps=$(go test -run '^$' -bench BenchmarkCachedPath -benchtime 2s ./internal/service/ |
	awk '/req\/sec/ { print $(NF-1) }')
: "${rps:?bench.sh: BenchmarkCachedPath produced no req/sec metric}"

# Succinct route index (4096-leaf XGFT): build time, compression ratio in
# bytes per leaf-pair (dense = 1.0), and MinTurn lookup latency.
idx_out=$(go test -run '^$' -bench 'BenchmarkTurnIndex(Build|Lookup)' \
	-benchtime 1s ./internal/routing/)
idx_build_ns=$(printf '%s\n' "$idx_out" | awk '$1 ~ /TurnIndexBuild\/succinct/ { print $3 }')
idx_bytes_pair=$(printf '%s\n' "$idx_out" | awk '$1 ~ /TurnIndexBuild\/succinct/ && /bytes\/pair/ { print $(NF-1) }')
idx_lookup_ns=$(printf '%s\n' "$idx_out" | awk '$1 ~ /TurnIndexLookup\/succinct/ { print $3 }')
: "${idx_build_ns:?bench.sh: BenchmarkTurnIndexBuild produced no succinct ns/op}"
: "${idx_bytes_pair:?bench.sh: BenchmarkTurnIndexBuild produced no bytes/pair metric}"
: "${idx_lookup_ns:?bench.sh: BenchmarkTurnIndexLookup produced no succinct ns/op}"

# Compressed cover sets (same 4096-leaf XGFT): streaming Rebuild time and
# the hybrid-container footprint next to the plain one-bitset-per-set cost.
cov_out=$(go test -run '^$' -bench BenchmarkCoverBuild -benchtime 1s ./internal/routing/)
cov_build_ns=$(printf '%s\n' "$cov_out" | awk '$1 ~ /CoverBuild/ { print $3 }')
cov_bytes=$(printf '%s\n' "$cov_out" | awk '$1 ~ /CoverBuild/ { for (i = 1; i < NF; i++) if ($(i+1) == "cover-bytes") print $i }')
cov_plain_bytes=$(printf '%s\n' "$cov_out" | awk '$1 ~ /CoverBuild/ { for (i = 1; i < NF; i++) if ($(i+1) == "plain-bytes") print $i }')
: "${cov_build_ns:?bench.sh: BenchmarkCoverBuild produced no ns/op}"
: "${cov_bytes:?bench.sh: BenchmarkCoverBuild produced no cover-bytes metric}"
: "${cov_plain_bytes:?bench.sh: BenchmarkCoverBuild produced no plain-bytes metric}"

# CSR level store: wiring time and sealed-store footprint vs the old
# [][]int32 arena cost model, at the scale_test sizes (64K / 512K leaves).
topo_out=$(go test -run '^$' -bench BenchmarkTopologyBuild -benchtime 1x ./internal/topology/)
topo_metric() { # $1 = leaves, $2 = metric unit (or "ns/op")
	printf '%s\n' "$topo_out" | awk -v pat="TopologyBuild/leaves=$1" -v unit="$2" '
		$1 ~ pat {
			if (unit == "ns/op") { print $3; exit }
			for (i = 1; i < NF; i++) if ($(i+1) == unit) { print $i; exit }
		}'
}
topo64_ns=$(topo_metric 65536 ns/op)
topo64_csr=$(topo_metric 65536 csr-bytes)
topo64_arena=$(topo_metric 65536 arena-bytes)
topo512_ns=$(topo_metric 524288 ns/op)
topo512_csr=$(topo_metric 524288 csr-bytes)
topo512_arena=$(topo_metric 524288 arena-bytes)
: "${topo64_ns:?bench.sh: BenchmarkTopologyBuild produced no 64K ns/op}"
: "${topo64_csr:?bench.sh: BenchmarkTopologyBuild produced no 64K csr-bytes metric}"
: "${topo64_arena:?bench.sh: BenchmarkTopologyBuild produced no 64K arena-bytes metric}"
: "${topo512_ns:?bench.sh: BenchmarkTopologyBuild produced no 512K ns/op}"
: "${topo512_csr:?bench.sh: BenchmarkTopologyBuild produced no 512K csr-bytes metric}"
: "${topo512_arena:?bench.sh: BenchmarkTopologyBuild produced no 512K arena-bytes metric}"

# Streaming exports: links/sec off the sealed CSR fast path at 64K leaves
# (the rate every unfaulted export runs at; the overlay fallback is the
# same benchmark's other sub-case).
exp_out=$(go test -run '^$' -bench 'BenchmarkExportEdges/sealed' -benchtime 1x ./internal/topology/)
exp_links=$(printf '%s\n' "$exp_out" | awk '$1 ~ /ExportEdges\/sealed/ { for (i = 1; i < NF; i++) if ($(i+1) == "links/s") print $i }')
: "${exp_links:?bench.sh: BenchmarkExportEdges produced no links/s metric}"

# Flow-level solver: one max-min-fair solve of a uniform matrix on a
# 64K-leaf XGFT (262,144 flows), reported as end-to-end flows/sec.
flow_out=$(go test -run '^$' -bench BenchmarkFlowSolve -benchtime 1x ./internal/flow/)
flow_metric() { # $1 = metric unit
	printf '%s\n' "$flow_out" | awk -v unit="$1" '
		$1 ~ /FlowSolve/ { for (i = 1; i < NF; i++) if ($(i+1) == unit) { print $i; exit } }'
}
flow_fps=$(flow_metric flows/s)
flow_rounds=$(flow_metric rounds)
flow_accepted=$(flow_metric accepted)
: "${flow_fps:?bench.sh: BenchmarkFlowSolve produced no flows/s metric}"
: "${flow_rounds:?bench.sh: BenchmarkFlowSolve produced no rounds metric}"
: "${flow_accepted:?bench.sh: BenchmarkFlowSolve produced no accepted metric}"

append_point() { # $1 = JSON object line
	if [ ! -f BENCH_engine.json ]; then
		printf '[\n%s\n]\n' "$1" >BENCH_engine.json
	else
		# Drop the closing bracket, add a comma to the last entry, re-close.
		awk -v point="$1" '
			{ lines[NR] = $0 }
			END {
				while (NR > 0 && lines[NR] !~ /\]/) NR--
				for (i = 1; i < NR; i++) print (i == NR - 1 ? lines[i] "," : lines[i])
				print point
				print "]"
			}' BENCH_engine.json >BENCH_engine.json.tmp
		mv BENCH_engine.json.tmp BENCH_engine.json
	fi
}

append_point "  {\"date\": \"$date\", \"exhibit\": \"fig8\", \"reps\": $reps, \"cycles\": $cycles, \"cores\": $cores, \"serial_s\": $serial, \"parallel_s\": $parallel, \"speedup\": $speedup}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"simcore-engine\", \"cycles_per_sec\": $cps}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"rfcmerge\", \"exhibit\": \"fig8\", \"shards\": 2, \"input_bytes\": $part_bytes, \"merge_s\": $merge_s, \"mb_per_sec\": $merge_mbps}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"rfclint\", \"packages\": $lint_pkgs, \"lint_s\": $lint_s}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"rfcd-path\", \"req_per_sec\": $rps}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"succinct-index\", \"leaves\": 4096, \"build_ns\": $idx_build_ns, \"bytes_per_pair\": $idx_bytes_pair, \"lookup_ns\": $idx_lookup_ns}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"cover-build\", \"leaves\": 4096, \"build_ns\": $cov_build_ns, \"cover_bytes\": $cov_bytes, \"plain_bytes\": $cov_plain_bytes}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"topology-build\", \"leaves\": 65536, \"wire_ns\": $topo64_ns, \"csr_bytes\": $topo64_csr, \"arena_bytes\": $topo64_arena}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"topology-build\", \"leaves\": 524288, \"wire_ns\": $topo512_ns, \"csr_bytes\": $topo512_csr, \"arena_bytes\": $topo512_arena}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"export-edges\", \"leaves\": 65536, \"links_per_sec\": $exp_links}"
append_point "  {\"date\": \"$date\", \"benchmark\": \"flow-solver\", \"leaves\": 65536, \"flows\": 262144, \"flows_per_sec\": $flow_fps, \"rounds\": $flow_rounds, \"accepted\": $flow_accepted}"

echo "fig8 x$reps reps @ $cycles cycles: serial ${serial}s, parallel(${cores}) ${parallel}s, speedup ${speedup}x"
echo "simcore engine: $cps simulated cycles/sec"
echo "rfcmerge: 2 shards, $part_bytes bytes in ${merge_s}s (${merge_mbps} MB/s), byte-identical to unsharded"
echo "rfclint: $lint_pkgs packages clean in ${lint_s}s"
echo "rfcd: $rps cached /v1/path req/sec"
echo "succinct index (4096 leaves): build ${idx_build_ns}ns, ${idx_bytes_pair} bytes/pair, lookup ${idx_lookup_ns}ns"
echo "cover sets (4096 leaves): rebuild ${cov_build_ns}ns, $cov_bytes compressed vs $cov_plain_bytes plain bytes"
echo "topology build (64K leaves): wire ${topo64_ns}ns, $topo64_csr CSR vs $topo64_arena arena bytes"
echo "topology build (512K leaves): wire ${topo512_ns}ns, $topo512_csr CSR vs $topo512_arena arena bytes"
echo "export edges (64K leaves, sealed): $exp_links links/s"
echo "flow solver (64K leaves, 262144 flows): $flow_fps flows/s, $flow_rounds rounds, accepted $flow_accepted"
