#!/bin/sh
# Regenerates every exhibit recorded in EXPERIMENTS.md and the final test
# and benchmark logs. Expect ~30-45 minutes on one core at the default
# (small) simulation scale.
set -eu
cd "$(dirname "$0")/.."
mkdir -p results

go build ./...
go vet ./...

bin=$(mktemp -d)/rfcpaper
go build -o "$bin" ./cmd/rfcpaper

"$bin" -exhibit fig5 -quiet >results/analytic.txt
"$bin" -exhibit fig6 -quiet >>results/analytic.txt
"$bin" -exhibit fig7 -quiet >>results/analytic.txt
"$bin" -exhibit costs -quiet >>results/analytic.txt
"$bin" -exhibit thm42 -trials 200 -quiet >results/thm42.txt
"$bin" -exhibit table3 -trials 100 -quiet >results/table3.txt
"$bin" -exhibit fig11 -trials 5 -quiet >results/fig11.txt
"$bin" -exhibit fig8 -scale small -reps 3 -quiet >results/fig8_small.txt
"$bin" -exhibit fig8 -scale small -reps 2 -cycles 5000 -loads 0.2,0.6,1.0 \
	-patterns fixed-random -infsink -quiet >results/fig8_small_infsink.txt
"$bin" -exhibit fig9 -scale small -reps 1 -cycles 4000 \
	-loads 0.1,0.3,0.5,0.7,0.9,1.0 -quiet >results/fig9_small.txt
"$bin" -exhibit fig10 -scale small -reps 1 -cycles 4000 \
	-loads 0.1,0.3,0.5,0.7,0.9,1.0 -quiet >results/fig10_small.txt
"$bin" -exhibit fig12 -scale small -reps 2 -quiet >results/fig12_small.txt
"$bin" -exhibit structure -quiet >results/structure.txt
"$bin" -exhibit tables -quiet >results/tables.txt
"$bin" -exhibit adversarial -reps 2 -cycles 4000 -quiet >results/adversarial.txt
"$bin" -exhibit ablation -reps 2 -cycles 3000 -quiet >results/ablation.txt
"$bin" -exhibit jellyfish -reps 2 -cycles 4000 -quiet >results/jellyfish.txt
# Paper-scale spot check (radix 36, 11,664 terminals) — the slow one.
"$bin" -exhibit fig8 -scale paper -reps 1 -cycles 2000 -loads 0.3,0.6,0.9,1.0 \
	-patterns uniform,random-pairing -quiet >results/fig8_paper_spot.txt

go test ./... 2>&1 | tee test_output.txt
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
