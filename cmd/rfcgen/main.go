// Command rfcgen generates a topology and prints its structural properties
// or exports it in a machine-readable format.
//
// Usage examples:
//
//	rfcgen -topo rfc -radix 36 -levels 3 -leaves 648 -seed 1
//	rfcgen -topo cft -radix 16 -levels 3
//	rfcgen -topo oft -q 5 -levels 2 -format edges
//	rfcgen -topo rfc -radix 16 -format json > rfc.json
//	rfcgen -topo rrn -n 128 -degree 8 -terms 4 -format dot
//
// -format uses the same streaming encoders as the rfcd export endpoint
// (GET /v1/topology/{key}/export): output is produced edge-by-edge from the
// topology's link iterators without materializing the edge list, so offline
// and online exports of the same build are byte-identical at any scale.
// -dot and -edges remain as shorthands.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rfclos"
	"rfclos/internal/topology"
)

func main() {
	var (
		topo   = flag.String("topo", "rfc", "topology: rfc | cft | oft | kary | rrn")
		radix  = flag.Int("radix", 16, "switch radix (rfc, cft)")
		levels = flag.Int("levels", 3, "levels (rfc, cft, oft, kary)")
		leaves = flag.Int("leaves", 0, "leaf switches N1 (rfc; 0 = maximum for radix/levels)")
		q      = flag.Int("q", 3, "projective plane order (oft)")
		k      = flag.Int("k", 4, "arity (kary)")
		n      = flag.Int("n", 64, "switches (rrn)")
		degree = flag.Int("degree", 6, "network degree (rrn)")
		terms  = flag.Int("terms", 3, "terminals per switch (rrn)")
		seed   = flag.Uint64("seed", 1, "random seed")
		format = flag.String("format", "",
			"export format: "+strings.Join(topology.ExportFormats(), " | ")+" (empty = summary)")
		edges = flag.Bool("edges", false, "shorthand for -format edges")
		dot   = flag.Bool("dot", false, "shorthand for -format dot")
	)
	flag.Parse()
	f := *format
	if f == "" && *dot {
		f = "dot"
	}
	if f == "" && *edges {
		f = "edges"
	}
	if err := run(*topo, *radix, *levels, *leaves, *q, *k, *n, *degree, *terms, *seed, f); err != nil {
		fmt.Fprintln(os.Stderr, "rfcgen:", err)
		os.Exit(1)
	}
}

func run(topo string, radix, levels, leaves, q, k, n, degree, terms int, seed uint64, format string) error {
	if topo == "rrn" {
		rrn, err := rfclos.NewRRN(n, degree, terms, seed)
		if err != nil {
			return err
		}
		if format != "" {
			return topology.ExportRRN(rrn, format, os.Stdout)
		}
		fmt.Printf("RRN: N=%d degree=%d radix=%d terminals=%d wires=%d diameter=%d\n",
			rrn.N(), rrn.Degree, rrn.Radix(), rrn.Terminals(), rrn.Wires(), rrn.Diameter())
		return nil
	}

	var (
		c   *rfclos.Clos
		err error
	)
	switch topo {
	case "rfc":
		if leaves == 0 {
			leaves = rfclos.MaxLeaves(radix, levels)
		}
		p := rfclos.Params{Radix: radix, Levels: levels, Leaves: leaves}
		var router *rfclos.Router
		c, router, err = rfclos.NewRFC(p, seed)
		if err != nil {
			return err
		}
		// The advisory comments would corrupt machine-readable exports (and
		// break byte-identity with the rfcd export endpoint), so summary only.
		if format == "" {
			fmt.Printf("# threshold radix %.2f, x=%.2f, predicted routability %.3f\n",
				rfclos.ThresholdRadix(leaves, levels), rfclos.XParam(radix, leaves, levels),
				rfclos.SuccessProbability(rfclos.XParam(radix, leaves, levels)))
			fmt.Printf("# up/down routable: %v\n", router.Routable())
			fmt.Printf("# cover sets: %d bytes compressed (%s)\n", router.CoverBytes(), router.CoverRepr())
		}
	case "cft":
		c, err = rfclos.NewCFT(radix, levels)
	case "oft":
		c, err = rfclos.NewOFT(q, levels)
	case "kary":
		c, err = rfclos.NewKaryTree(k, levels)
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}
	if err != nil {
		return err
	}
	if format != "" {
		return topology.Export(c, format, os.Stdout)
	}
	fmt.Println(c)
	fmt.Printf("switches=%d total-ports=%d\n", c.NumSwitches(), c.TotalPorts())
	return nil
}
