// Command rfcgen generates a topology and prints its structural properties
// or its edge list.
//
// Usage examples:
//
//	rfcgen -topo rfc -radix 36 -levels 3 -leaves 648 -seed 1
//	rfcgen -topo cft -radix 16 -levels 3
//	rfcgen -topo oft -q 5 -levels 2 -edges
//	rfcgen -topo rrn -n 128 -degree 8 -terms 4
package main

import (
	"flag"
	"fmt"
	"os"

	"rfclos"
)

func main() {
	var (
		topo   = flag.String("topo", "rfc", "topology: rfc | cft | oft | kary | rrn")
		radix  = flag.Int("radix", 16, "switch radix (rfc, cft)")
		levels = flag.Int("levels", 3, "levels (rfc, cft, oft, kary)")
		leaves = flag.Int("leaves", 0, "leaf switches N1 (rfc; 0 = maximum for radix/levels)")
		q      = flag.Int("q", 3, "projective plane order (oft)")
		k      = flag.Int("k", 4, "arity (kary)")
		n      = flag.Int("n", 64, "switches (rrn)")
		degree = flag.Int("degree", 6, "network degree (rrn)")
		terms  = flag.Int("terms", 3, "terminals per switch (rrn)")
		seed   = flag.Uint64("seed", 1, "random seed")
		edges  = flag.Bool("edges", false, "print the edge list instead of a summary")
		dot    = flag.Bool("dot", false, "print the topology as Graphviz DOT")
	)
	flag.Parse()
	if err := run(*topo, *radix, *levels, *leaves, *q, *k, *n, *degree, *terms, *seed, *edges, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "rfcgen:", err)
		os.Exit(1)
	}
}

func run(topo string, radix, levels, leaves, q, k, n, degree, terms int, seed uint64, edges, dot bool) error {
	if topo == "rrn" {
		rrn, err := rfclos.NewRRN(n, degree, terms, seed)
		if err != nil {
			return err
		}
		if edges {
			for _, e := range rrn.G.Edges() {
				fmt.Println(e.U, e.V)
			}
			return nil
		}
		fmt.Printf("RRN: N=%d degree=%d radix=%d terminals=%d wires=%d diameter=%d\n",
			rrn.N(), rrn.Degree, rrn.Radix(), rrn.Terminals(), rrn.Wires(), rrn.Diameter())
		return nil
	}

	var (
		c   *rfclos.Clos
		err error
	)
	switch topo {
	case "rfc":
		if leaves == 0 {
			leaves = rfclos.MaxLeaves(radix, levels)
		}
		p := rfclos.Params{Radix: radix, Levels: levels, Leaves: leaves}
		var router *rfclos.Router
		c, router, err = rfclos.NewRFC(p, seed)
		if err != nil {
			return err
		}
		fmt.Printf("# threshold radix %.2f, x=%.2f, predicted routability %.3f\n",
			rfclos.ThresholdRadix(leaves, levels), rfclos.XParam(radix, leaves, levels),
			rfclos.SuccessProbability(rfclos.XParam(radix, leaves, levels)))
		fmt.Printf("# up/down routable: %v\n", router.Routable())
	case "cft":
		c, err = rfclos.NewCFT(radix, levels)
	case "oft":
		c, err = rfclos.NewOFT(q, levels)
	case "kary":
		c, err = rfclos.NewKaryTree(k, levels)
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}
	if err != nil {
		return err
	}
	if dot {
		return c.WriteDOT(os.Stdout)
	}
	if edges {
		for _, l := range c.Links() {
			fmt.Println(l.A, l.B)
		}
		return nil
	}
	fmt.Println(c)
	fmt.Printf("switches=%d total-ports=%d\n", c.NumSwitches(), c.TotalPorts())
	return nil
}
