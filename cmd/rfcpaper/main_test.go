package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rfclos/internal/analysis"
	"rfclos/internal/engine"
	"rfclos/internal/exhibit"
)

// TestEveryExhibitRoundTripsThroughRun drives the real dispatch path for
// every registered id: run() must resolve the id, execute it at quick
// parameters, and emit a parseable JSON report stamped with the same id.
func TestEveryExhibitRoundTripsThroughRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every exhibit; skipped under -short")
	}
	dir := t.TempDir()
	r := runner{
		params: exhibit.Params{
			Scale: "small", Seed: 7, Trials: 2, Cycles: 300, Reps: 1,
			Loads: []float64{0.5}, Patterns: []string{"uniform"},
		},
		outDir: dir,
		quiet:  true,
	}
	for _, id := range exhibit.IDs() {
		if err := r.run(id); err != nil {
			t.Fatalf("run(%q): %v", id, err)
		}
		path := filepath.Join(dir, id+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("run(%q) wrote no report: %v", id, err)
		}
		rep, err := analysis.ParseReport(data)
		if err != nil {
			t.Fatalf("run(%q) wrote unparseable JSON: %v", id, err)
		}
		if rep.Exhibit != id {
			t.Errorf("run(%q) stamped exhibit %q", id, rep.Exhibit)
		}
		if rep.MissingObs() != 0 {
			t.Errorf("run(%q): unsharded report missing %d observations", id, rep.MissingObs())
		}
	}
}

func TestRunUnknownExhibit(t *testing.T) {
	r := runner{quiet: true}
	err := r.run("fig99")
	if err == nil || !strings.Contains(err.Error(), "unknown exhibit") {
		t.Errorf("run(fig99) = %v, want unknown-exhibit error", err)
	}
}

func TestOutPathEncodesShard(t *testing.T) {
	r := runner{outDir: "parts"}
	if got := r.outPath("fig8"); got != filepath.Join("parts", "fig8.json") {
		t.Errorf("unsharded outPath = %q", got)
	}
	r.params.Shard = engine.Shard{K: 1, N: 2}
	if got := r.outPath("fig8"); got != filepath.Join("parts", "fig8.shard1-of-2.json") {
		t.Errorf("sharded outPath = %q", got)
	}
}
