// Command rfcpaper regenerates the paper's exhibits: Figures 5-12, Table 3,
// the §5 cost table and a Theorem 4.2 Monte-Carlo validation.
//
// Usage:
//
//	rfcpaper -exhibit fig5            # analytic, instant
//	rfcpaper -exhibit fig8 -scale small
//	rfcpaper -exhibit table3 -trials 100
//	rfcpaper -exhibit all -scale small
//
// -scale small (default) runs radix-16 analogues of the simulation
// scenarios that preserve the paper's comparisons on one machine;
// -scale paper uses the exact radix-36 networks (11K/100K/200K terminals)
// and is slow.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rfclos"
	"rfclos/internal/analysis"
	"rfclos/internal/engine"
)

func main() {
	var (
		exhibit  = flag.String("exhibit", "all", "fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|table3|thm42|costs|ablation|structure|adversarial|tables|jellyfish|rrnfaults|all")
		scale    = flag.String("scale", "small", "small | paper (simulation exhibits)")
		seed     = flag.Uint64("seed", 1, "random seed")
		trials   = flag.Int("trials", 0, "trials/repetitions (0 = per-exhibit default)")
		cycles   = flag.Int("cycles", 0, "measured cycles per simulation (0 = default)")
		reps     = flag.Int("reps", 0, "simulation repetitions per point (0 = default)")
		loads    = flag.String("loads", "", "comma-separated offered loads for fig8-10 (default sweep 0.1..1.0)")
		patterns = flag.String("patterns", "", "comma-separated traffic patterns for fig8-10 (default all three)")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker pool size for simulation/Monte-Carlo jobs (results are identical for any value)")
		infSink  = flag.Bool("infsink", false, "model infinite reception bandwidth (see simnet.Config.InfiniteSink)")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()
	r := runner{
		scale:   analysis.Scale(*scale),
		seed:    *seed,
		trials:  *trials,
		cycles:  *cycles,
		reps:    *reps,
		workers: *workers,
		infSink: *infSink,
		asCSV:   *asCSV,
		quiet:   *quiet,
	}
	if *loads != "" {
		for _, f := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfcpaper: bad -loads:", err)
				os.Exit(2)
			}
			r.loads = append(r.loads, v)
		}
	}
	if *patterns != "" {
		r.patterns = strings.Split(*patterns, ",")
	}
	if err := r.run(*exhibit); err != nil {
		fmt.Fprintln(os.Stderr, "rfcpaper:", err)
		os.Exit(1)
	}
}

type runner struct {
	scale    analysis.Scale
	seed     uint64
	trials   int
	cycles   int
	reps     int
	workers  int
	loads    []float64
	patterns []string
	infSink  bool
	asCSV    bool
	quiet    bool
}

// progress returns a fresh counting/timing progress sink ("[n 1.23s] msg"
// lines on stderr), safe for concurrent use by worker goroutines. Each
// exhibit gets its own counter.
func (r runner) progress() func(string) {
	if r.quiet {
		return nil
	}
	return engine.Progress(func(s string) { fmt.Fprintln(os.Stderr, "  ...", s) })
}

func (r runner) simOptions() analysis.SimOptions {
	opts := analysis.SimOptions{
		Seed: r.seed, Reps: r.reps, Workers: r.workers, Progress: r.progress(),
		Loads: r.loads, Patterns: r.patterns,
	}
	opts.Sim.InfiniteSink = r.infSink
	if r.cycles > 0 {
		opts.Sim.MeasureCycles = r.cycles
		opts.Sim.WarmupCycles = r.cycles / 4
	}
	return opts
}

func (r runner) run(exhibit string) error {
	all := exhibit == "all"
	ran := false
	emit := func(rep *rfclos.Report, err error) error {
		if err != nil {
			return err
		}
		if r.asCSV {
			fmt.Print(rep.CSV())
		} else {
			fmt.Println(rep.Format())
		}
		ran = true
		return nil
	}
	start := time.Now()
	radix := 36 // the paper's commodity radix for the analytic exhibits

	if all || exhibit == "fig5" {
		if err := emit(rfclos.Fig5Diameter(radix), nil); err != nil {
			return err
		}
	}
	if all || exhibit == "fig6" {
		if err := emit(rfclos.Fig6Scalability(nil), nil); err != nil {
			return err
		}
	}
	if all || exhibit == "fig7" {
		if err := emit(rfclos.Fig7Expandability(radix, 0, 40), nil); err != nil {
			return err
		}
	}
	if all || exhibit == "costs" {
		if err := emit(rfclos.Costs(), nil); err != nil {
			return err
		}
	}
	if all || exhibit == "thm42" {
		n1, tr := 300, 100
		if r.trials > 0 {
			tr = r.trials
		}
		rep, err := rfclos.Thm42(n1, tr, r.workers, r.seed)
		if err := emit(rep, err); err != nil {
			return err
		}
	}
	for i, name := range []string{"fig8", "fig9", "fig10"} {
		if all || exhibit == name {
			rep, err := rfclos.ScenarioSweep(r.scale, i, r.simOptions())
			if err := emit(rep, err); err != nil {
				return err
			}
		}
	}
	if all || exhibit == "fig11" {
		opts := rfclos.Fig11Options{Radix: 12, Seed: r.seed, Workers: r.workers}
		if r.trials > 0 {
			opts.Trials = r.trials
		}
		rep, err := rfclos.Fig11UpDownFaults(opts)
		if err := emit(rep, err); err != nil {
			return err
		}
	}
	if all || exhibit == "fig12" {
		opts := rfclos.Fig12Options{Scale: r.scale, Seed: r.seed, Reps: r.reps, Workers: r.workers, Progress: r.progress()}
		if r.cycles > 0 {
			opts.Sim.MeasureCycles = r.cycles
			opts.Sim.WarmupCycles = r.cycles / 4
		}
		rep, err := rfclos.Fig12FaultThroughput(opts)
		if err := emit(rep, err); err != nil {
			return err
		}
	}
	if all || exhibit == "ablation" {
		opts := rfclos.AblationOptions{Scale: r.scale, Seed: r.seed, Reps: r.reps, Workers: r.workers}
		if r.cycles > 0 {
			opts.Sim.MeasureCycles = r.cycles
			opts.Sim.WarmupCycles = r.cycles / 4
		}
		rep, err := rfclos.Ablations(opts)
		if err := emit(rep, err); err != nil {
			return err
		}
	}
	if all || exhibit == "structure" {
		opts := rfclos.StructureOptions{Seed: r.seed}
		rep, err := rfclos.Structure(opts)
		if err := emit(rep, err); err != nil {
			return err
		}
	}
	if all || exhibit == "adversarial" {
		opts := rfclos.AdversarialOptions{Scale: r.scale, Seed: r.seed, Reps: r.reps, Workers: r.workers}
		if r.cycles > 0 {
			opts.Sim.MeasureCycles = r.cycles
			opts.Sim.WarmupCycles = r.cycles / 4
		}
		rep, err := rfclos.Adversarial(opts)
		if err := emit(rep, err); err != nil {
			return err
		}
	}
	if all || exhibit == "tables" {
		rep, err := rfclos.TablesReport(r.scale, 8, r.seed)
		if err := emit(rep, err); err != nil {
			return err
		}
	}
	if all || exhibit == "jellyfish" {
		opts := rfclos.JellyfishOptions{Scale: r.scale, Seed: r.seed, Reps: r.reps, Workers: r.workers, Loads: r.loads}
		if r.cycles > 0 {
			opts.Sim.MeasureCycles = r.cycles
			opts.Sim.WarmupCycles = r.cycles / 4
		}
		rep, err := rfclos.Jellyfish(opts)
		if err := emit(rep, err); err != nil {
			return err
		}
	}
	if all || exhibit == "rrnfaults" {
		opts := rfclos.RRNFaultsOptions{Scale: r.scale, Seed: r.seed, Reps: r.reps, Workers: r.workers, Progress: r.progress()}
		if r.cycles > 0 {
			opts.Sim.MeasureCycles = r.cycles
			opts.Sim.WarmupCycles = r.cycles / 4
		}
		rep, err := rfclos.RRNFaults(opts)
		if err := emit(rep, err); err != nil {
			return err
		}
	}
	if all || exhibit == "table3" {
		opts := rfclos.Table3Options{Seed: r.seed, Workers: r.workers}
		if r.trials > 0 {
			opts.Trials = r.trials
		}
		rep, err := rfclos.Table3Disconnect(opts)
		if err := emit(rep, err); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown exhibit %q", exhibit)
	}
	if !r.quiet {
		fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
