// Command rfcpaper regenerates the paper's exhibits: Figures 5-12, Table 3,
// the §5 cost table, a Theorem 4.2 Monte-Carlo validation and the extension
// experiments. The exhibit set, its "all" order and the per-exhibit defaults
// all come from the internal/exhibit registry.
//
// Usage:
//
//	rfcpaper -exhibit fig5            # analytic, instant
//	rfcpaper -exhibit fig8 -scale small
//	rfcpaper -exhibit table3 -trials 100
//	rfcpaper -exhibit all -scale small
//	rfcpaper -list                    # one line per exhibit
//
// -scale small (default) runs radix-16 analogues of the simulation
// scenarios that preserve the paper's comparisons on one machine;
// -scale paper uses the exact radix-36 networks (11K/100K/200K terminals)
// and is slow.
//
// Sharded runs split an exhibit's job grid across machines:
//
//	rfcpaper -exhibit fig8 -shard 0/2 -out parts   # machine A
//	rfcpaper -exhibit fig8 -shard 1/2 -out parts   # machine B
//	rfcmerge parts/*.json                          # byte-identical report
//
// Every shard writes a partial JSON report; rfcmerge unions them into the
// exact bytes an unsharded run prints (see EXPERIMENTS.md "Sharded runs").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rfclos/internal/analysis"
	"rfclos/internal/engine"
	"rfclos/internal/exhibit"
)

func main() {
	var (
		ex       = flag.String("exhibit", "all", exhibit.Usage())
		scale    = flag.String("scale", "small", "small | paper (simulation exhibits)")
		seed     = flag.Uint64("seed", 1, "random seed")
		trials   = flag.Int("trials", 0, "trials/repetitions (0 = per-exhibit default)")
		cycles   = flag.Int("cycles", 0, "measured cycles per simulation (0 = default)")
		reps     = flag.Int("reps", 0, "simulation repetitions per point (0 = default)")
		loads    = flag.String("loads", "", "comma-separated offered loads for fig8-10 (default sweep 0.1..1.0)")
		patterns = flag.String("patterns", "", "comma-separated traffic patterns for fig8-10 (default all three)")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker pool size for simulation/Monte-Carlo jobs (results are identical for any value)")
		infSink  = flag.Bool("infsink", false, "model infinite reception bandwidth (see simnet.Config.InfiniteSink)")
		backend  = flag.String("backend", "", "throughput engine for fig8-10: cycle (default) | flow (max-min-fair solver)")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		asJSON   = flag.Bool("json", false, "emit the versioned JSON report instead of aligned text")
		shardStr = flag.String("shard", "", "run only this slice of each exhibit's job grid, as k/n (requires -out or -json)")
		outDir   = flag.String("out", "", "write per-exhibit JSON reports into this directory instead of stdout")
		list     = flag.Bool("list", false, "list the registered exhibits and exit")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()
	if *list {
		fmt.Print(exhibit.Help())
		return
	}
	shard, err := engine.ParseShard(*shardStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfcpaper:", err)
		os.Exit(2)
	}
	r := runner{
		params: exhibit.Params{
			Scale:        analysis.Scale(*scale),
			Seed:         *seed,
			Trials:       *trials,
			Cycles:       *cycles,
			Reps:         *reps,
			Workers:      *workers,
			InfiniteSink: *infSink,
			Backend:      *backend,
			Shard:        shard,
		},
		asCSV:  *asCSV,
		asJSON: *asJSON,
		outDir: *outDir,
		quiet:  *quiet,
	}
	if shard.Enabled() && *outDir == "" && !*asJSON {
		fmt.Fprintln(os.Stderr, "rfcpaper: -shard produces a partial report; use -out DIR (for rfcmerge) or -json")
		os.Exit(2)
	}
	if *loads != "" {
		for _, f := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfcpaper: bad -loads:", err)
				os.Exit(2)
			}
			r.params.Loads = append(r.params.Loads, v)
		}
	}
	if *patterns != "" {
		r.params.Patterns = strings.Split(*patterns, ",")
	}
	if err := r.run(*ex); err != nil {
		fmt.Fprintln(os.Stderr, "rfcpaper:", err)
		os.Exit(1)
	}
}

type runner struct {
	params exhibit.Params
	asCSV  bool
	asJSON bool
	outDir string
	quiet  bool
}

// progress returns a fresh counting/timing progress sink ("[n 1.23s] msg"
// lines on stderr), safe for concurrent use by worker goroutines. Each
// exhibit gets its own counter.
func (r runner) progress() func(string) {
	if r.quiet {
		return nil
	}
	return engine.Progress(func(s string) { fmt.Fprintln(os.Stderr, "  ...", s) })
}

// outPath names an exhibit's JSON file; sharded partials carry the shard in
// the name so any partition can land in one directory.
func (r runner) outPath(id string) string {
	name := id + ".json"
	if r.params.Shard.Enabled() {
		name = fmt.Sprintf("%s.shard%d-of-%d.json", id, r.params.Shard.K, r.params.Shard.N)
	}
	return filepath.Join(r.outDir, name)
}

// emit renders one finished report per the output flags.
func (r runner) emit(rep *analysis.Report) error {
	if r.outDir != "" || r.asJSON {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if r.outDir == "" {
			fmt.Println(string(data))
			return nil
		}
		path := r.outPath(rep.Exhibit)
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if !r.quiet {
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
		return nil
	}
	if r.asCSV {
		fmt.Print(rep.CSV())
	} else {
		fmt.Println(rep.Format())
	}
	return nil
}

func (r runner) run(arg string) error {
	exhibits, err := exhibit.Resolve(arg)
	if err != nil {
		return err
	}
	if r.outDir != "" {
		if err := os.MkdirAll(r.outDir, 0o755); err != nil {
			return err
		}
	}
	start := time.Now()
	for _, e := range exhibits {
		p := r.params
		p.Progress = r.progress()
		rep, err := e.Run(p)
		if err != nil {
			return err
		}
		if err := r.emit(rep); err != nil {
			return err
		}
	}
	if !r.quiet {
		fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
