// Command rfcplan prints the §5 expansion schedule for growing a Random
// Folded Clos datacenter: per step, the added terminals, switch and wire
// counts, and how many existing links must be re-plugged, flagging where
// the Theorem 4.2 threshold forces a weak expansion (an extra level).
//
// Usage:
//
//	rfcplan -radix 36 -levels 3 -from 11664 -to 202572
package main

import (
	"flag"
	"fmt"
	"os"

	"rfclos"
)

func main() {
	var (
		radix  = flag.Int("radix", 36, "switch radix")
		levels = flag.Int("levels", 3, "levels")
		from   = flag.Int("from", 11664, "initial terminal count")
		to     = flag.Int("to", 0, "target terminal count (0 = Theorem 4.2 maximum)")
		rows   = flag.Int("rows", 15, "max schedule rows")
	)
	flag.Parse()
	if *to == 0 {
		*to = rfclos.MaxTerminals(*radix, *levels)
	}
	steps, err := rfclos.PlanExpansion(*radix, *levels, *from, *to, *rows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfcplan:", err)
		os.Exit(1)
	}
	fmt.Printf("expansion plan: radix %d, %d levels, %d -> %d terminals\n", *radix, *levels, *from, *to)
	fmt.Printf("threshold: %d terminals (add a level beyond this)\n\n", rfclos.MaxTerminals(*radix, *levels))
	fmt.Printf("%-10s %-11s %-10s %-10s %-10s %-12s %s\n",
		"increment", "terminals", "switches", "wires", "rewired", "cum-rewired", "")
	for _, s := range steps {
		mark := ""
		if s.AtThreshold {
			mark = "<< Theorem 4.2 threshold: weak-expand next"
		}
		fmt.Printf("%-10d %-11d %-10d %-10d %-10d %-12d %s\n",
			s.Increment, s.Terminals, s.Switches, s.Wires, s.RewiredLinks, s.CumRewired, mark)
	}
}
