// Command rfcmerge combines the partial JSON reports sharded rfcpaper runs
// write (-shard k/n -out dir) into final reports. Aggregate cells carry
// job-indexed observations, so the merge re-sums them in job order and the
// merged output is byte-identical to an unsharded run — for any partition of
// the shards across machines.
//
// Usage:
//
//	rfcmerge parts/*.json             # aligned text to stdout
//	rfcmerge -csv parts/*.json
//	rfcmerge -json -out final parts/*.json
//	rfcmerge -allow-partial parts/fig8.shard0-of-2.json
//
// Partials of several exhibits may be mixed freely; rfcmerge groups the
// files by their exhibit id and emits the merged reports in the registry's
// "all" order. Missing shards are an error unless -allow-partial is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rfclos/internal/analysis"
	"rfclos/internal/exhibit"
)

func main() {
	var (
		asCSV        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		asJSON       = flag.Bool("json", false, "emit the versioned JSON report instead of aligned text")
		outDir       = flag.String("out", "", "write per-exhibit JSON reports into this directory instead of stdout")
		allowPartial = flag.Bool("allow-partial", false, "merge even when observations are missing (some shards absent)")
		quiet        = flag.Bool("quiet", false, "suppress per-file notes")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rfcmerge [flags] report.json...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Args(), *asCSV, *asJSON, *outDir, *allowPartial, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "rfcmerge:", err)
		os.Exit(1)
	}
}

func run(paths []string, asCSV, asJSON bool, outDir string, allowPartial, quiet bool) error {
	// Group the partials by exhibit id, remembering first-seen order for
	// ids the registry does not know (foreign reports still merge fine).
	groups := map[string][]*analysis.Report{}
	var seen []string
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rep, err := analysis.ParseReport(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		id := rep.Exhibit
		if _, ok := groups[id]; !ok {
			seen = append(seen, id)
		}
		groups[id] = append(groups[id], rep)
		if !quiet {
			shard := "complete"
			if rep.Shard.Enabled() {
				shard = "shard " + rep.Shard.String()
			}
			fmt.Fprintf(os.Stderr, "read %s: %s (%s)\n", path, id, shard)
		}
	}
	// Registry order first, then unknown ids in input order.
	var order []string
	for _, id := range exhibit.IDs() {
		if _, ok := groups[id]; ok {
			order = append(order, id)
		}
	}
	for _, id := range seen {
		if _, known := exhibit.Lookup(id); !known {
			order = append(order, id)
		}
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range order {
		merged, err := analysis.MergeReports(groups[id]...)
		if err != nil {
			return err
		}
		if missing := merged.MissingObs(); missing > 0 {
			if !allowPartial {
				return fmt.Errorf("%s: %d observations missing — not all shards present (rerun with every k/n, or -allow-partial)",
					id, missing)
			}
			fmt.Fprintf(os.Stderr, "warning: %s: %d observations missing\n", id, missing)
		}
		if err := emit(merged, asCSV, asJSON, outDir, quiet); err != nil {
			return err
		}
	}
	return nil
}

func emit(rep *analysis.Report, asCSV, asJSON bool, outDir string, quiet bool) error {
	if outDir != "" || asJSON {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if outDir == "" {
			fmt.Println(string(data))
			return nil
		}
		path := filepath.Join(outDir, rep.Exhibit+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
		return nil
	}
	if asCSV {
		fmt.Print(rep.CSV())
	} else {
		fmt.Println(rep.Format())
	}
	return nil
}
