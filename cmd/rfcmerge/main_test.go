package main

import (
	"os"
	"path/filepath"
	"testing"

	"rfclos/internal/analysis"
	"rfclos/internal/engine"
)

func writeReport(t *testing.T, dir, name string, rep *analysis.Report) string {
	t.Helper()
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func table3(t *testing.T, sh engine.Shard) *analysis.Report {
	t.Helper()
	rep, err := analysis.Table3Disconnect(analysis.Table3Options{
		Targets: []int{256}, Trials: 4, Seed: 11, Shard: sh,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Exhibit = "table3"
	rep.Shard = sh
	return rep
}

// TestMergeShardsToFinalReport drives run() the way the CLI does: two shard
// partials in, one merged JSON out, byte-identical to the unsharded report.
func TestMergeShardsToFinalReport(t *testing.T) {
	parts := t.TempDir()
	out := t.TempDir()
	p0 := writeReport(t, parts, "table3.shard0-of-2.json", table3(t, engine.Shard{K: 0, N: 2}))
	p1 := writeReport(t, parts, "table3.shard1-of-2.json", table3(t, engine.Shard{K: 1, N: 2}))

	if err := run([]string{p0, p1}, false, false, out, false, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(out, "table3.json"))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := analysis.ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	full := table3(t, engine.Shard{})
	if merged.Format() != full.Format() {
		t.Errorf("merged output differs from unsharded:\n%s\nvs\n%s", merged.Format(), full.Format())
	}

	// One shard alone is incomplete: an error without -allow-partial, a
	// warning with it.
	if err := run([]string{p0}, false, false, out, false, true); err == nil {
		t.Error("missing shard accepted without -allow-partial")
	}
	if err := run([]string{p0}, false, false, out, true, true); err != nil {
		t.Errorf("-allow-partial rejected a lone shard: %v", err)
	}
}
