// Command rfclint is the repository's determinism linter: it statically
// enforces the invariants every exhibit's byte-identical reproducibility
// rests on. Deterministic packages must draw randomness only from
// internal/rng streams derived from seeds and job coordinates — never from
// the wall clock, math/rand, Go's randomized map iteration order, or
// order-dependent stream splitting inside parallel workers.
//
// Usage:
//
//	rfclint [-rules] [packages]
//
// Packages are directories relative to the current module; a trailing
// "/..." walks recursively (default "./..."). Findings print one per line
// as file:line:col: rule: message, and any finding makes the exit status
// non-zero, so CI can gate on it. A finding is silenced by a
// `//rfclint:allow <rule>` comment on the offending line or the line above
// it; see the "Determinism invariants" section of DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rfclos/internal/lint"
)

func main() {
	rules := flag.Bool("rules", false, "list the lint rules and exit")
	quiet := flag.Bool("quiet", false, "suppress the all-clear summary line")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: rfclint [flags] [packages]\n\npackages default to ./... (the whole module)\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-20s %s\n", r.Name, r.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	ld, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.Expand(cwd, patterns)
	if err != nil {
		fatal(err)
	}

	findings, err := lint.Run(lint.DefaultConfig(ld.Module), ld, dirs)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		// Report paths relative to the working directory, like go vet.
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("rfclint: %d packages clean\n", len(dirs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfclint:", err)
	os.Exit(2)
}
