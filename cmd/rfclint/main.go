// Command rfclint is the repository's determinism linter: it statically
// enforces the invariants every exhibit's byte-identical reproducibility
// rests on. Deterministic packages must draw randomness only from
// internal/rng streams derived from seeds and job coordinates — never from
// the wall clock, math/rand, Go's randomized map iteration order, or
// order-dependent stream splitting inside parallel workers. On top of the
// per-function rules, three interprocedural passes walk a whole-program
// call graph: handler-purity (HTTP handlers and exhibit Run functions
// reach only deterministic sources, with a witness path in each
// diagnostic), lock-discipline (//rfclint:guardedby fields are accessed
// with their mutex held), and overlay-invalidate (//rfclint:mutatesvia
// fields are only written via the designated invalidation functions).
//
// Usage:
//
//	rfclint [-rules] [-json] [-baseline file] [-write-baseline file] [-workers n] [packages]
//
// Packages are directories relative to the current module; a trailing
// "/..." walks recursively (default "./..."). Findings print one per line
// as file:line:col: rule: message, and any finding makes the exit status
// non-zero, so CI can gate on it. -json instead emits a versioned,
// byte-stable JSON report with module-root-relative paths. -baseline
// filters findings through an accept list and additionally fails (exit 3)
// on stale entries, so the accepted set only ever shrinks;
// -write-baseline regenerates that list from the current findings. A
// finding is silenced at source with a `//rfclint:allow <rule>` comment on
// the offending line or the line above it; see the "Determinism
// invariants" section of DESIGN.md.
//
// Exit status: 0 clean, 1 findings, 2 usage or analysis error, 3 stale
// baseline entries.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"rfclos/internal/lint"
)

func main() {
	rules := flag.Bool("rules", false, "list the lint rules and exit")
	quiet := flag.Bool("quiet", false, "suppress the all-clear summary line")
	jsonOut := flag.Bool("json", false, "emit a versioned JSON report on stdout")
	baselinePath := flag.String("baseline", "", "filter findings through the accept list in `file`; stale entries are an error")
	writeBaseline := flag.String("write-baseline", "", "write the current findings as an accept list to `file` and exit 0")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "number of parallel analysis workers")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: rfclint [flags] [packages]\n\npackages default to ./... (the whole module)\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-20s %s\n", r.Name, r.Doc)
		}
		for _, r := range lint.GraphRules() {
			fmt.Printf("%-20s %s\n", r.Name, r.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	ld, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.Expand(cwd, patterns)
	if err != nil {
		fatal(err)
	}

	findings, err := lint.RunParallel(lint.DefaultConfig(ld.Module), ld, dirs, *workers)
	if err != nil {
		fatal(err)
	}
	report := lint.NewReport(ld.Module, ld.Root, len(dirs), findings)

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, report); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("rfclint: wrote %d accepted findings to %s\n", len(report.Findings), *writeBaseline)
		}
		return
	}

	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		stale = b.Apply(report)
	}

	switch {
	case *jsonOut:
		if err := report.Encode(os.Stdout); err != nil {
			fatal(err)
		}
	case *baselinePath != "":
		// Baseline-filtered: print the kept findings (root-relative, as in
		// the JSON report).
		for _, f := range report.Findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Rule, f.Msg)
		}
	default:
		for _, f := range findings {
			// Report paths relative to the working directory, like go vet.
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
				f.Pos.Filename = rel
			}
			fmt.Println(f)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "rfclint: stale baseline entry: %s: %s: %s\n", e.File, e.Rule, e.Msg)
	}
	if len(stale) > 0 {
		os.Exit(3)
	}
	if len(report.Findings) > 0 {
		os.Exit(1)
	}
	if !*quiet && !*jsonOut {
		fmt.Printf("rfclint: %d packages clean\n", len(dirs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfclint:", err)
	os.Exit(2)
}
