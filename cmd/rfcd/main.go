// Command rfcd is the topology-query daemon: an HTTP/JSON service answering
// topology, routing, expandability and fault queries over deterministic
// RFC / fat-tree / random-regular builds, with a content-addressed build
// cache and precomputed up/down route indexes (see internal/service and
// DESIGN.md, "Serving layer").
//
// Endpoints:
//
//	GET  /healthz                       liveness
//	GET  /metrics                       atomic counters (requests, cache, latency)
//	POST /v1/topology                   build (or fetch cached) + summary stats
//	GET  /v1/topology/{key}/export      adjacency JSON / Graphviz DOT / edge list
//	GET  /v1/path?key=&src=&dst=&seed=  one shortest up/down path
//	POST /v1/paths                      batch of src/dst pairs, one round trip
//	POST /v1/expand                     plan an R-terminal expansion step (§5, Thm 4.2)
//	GET  /v1/faults?key=&links=&seed=   connectivity + routability under random faults
//	POST /v1/throughput                 max-min-fair flow rates for a traffic matrix
//
// Usage:
//
//	rfcd -addr :8080 -cache 64 -cache-bytes 0 -dense-index-bytes 0
//	rfcd -selfcheck        # in-process endpoint smoke test, used by CI
//
// Route indexes are tiered: topologies whose dense N1² turn table fits
// -dense-index-bytes (default 64 MiB) get the O(1) dense table; larger ones
// get the succinct exception-coded index, so there is no hard leaf-count cap.
// -cache-bytes bounds the cache by estimated topology memory on top of the
// -cache entry count; exports stream with chunked transfer encoding.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rfclos/internal/service"
	"rfclos/internal/service/client"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheSize  = flag.Int("cache", 64, "topology cache capacity (LRU entries)")
		cacheBytes = flag.Int64("cache-bytes", 0, "cache byte budget over estimated topology memory (0 = 8 GiB default, negative = unlimited)")
		denseIndex = flag.Int("dense-index-bytes", 0, "largest dense route-index table in bytes before switching to the succinct tier (0 = 64 MiB default, negative = always dense)")
		selfcheck  = flag.Bool("selfcheck", false, "run the endpoint smoke test against an in-process server and exit")
	)
	flag.Parse()

	if *selfcheck {
		if err := client.Selfcheck(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rfcd: selfcheck failed:", err)
			os.Exit(1)
		}
		fmt.Println("rfcd: selfcheck passed")
		return
	}

	opts := service.Options{
		CacheSize:       *cacheSize,
		CacheBytes:      *cacheBytes,
		DenseIndexBytes: *denseIndex,
	}
	if err := run(*addr, opts); err != nil {
		fmt.Fprintln(os.Stderr, "rfcd:", err)
		os.Exit(1)
	}
}

func run(addr string, opts service.Options) error {
	srv := service.New(opts)
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("rfcd: serving on %s (cache %d)\n", addr, opts.CacheSize)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("rfcd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
