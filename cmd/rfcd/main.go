// Command rfcd is the topology-query daemon: an HTTP/JSON service answering
// topology, routing, expandability and fault queries over deterministic
// RFC / fat-tree / random-regular builds, with a content-addressed build
// cache and precomputed up/down route indexes (see internal/service and
// DESIGN.md, "Serving layer").
//
// Endpoints:
//
//	GET  /healthz                       liveness
//	GET  /metrics                       atomic counters (requests, cache, latency)
//	POST /v1/topology                   build (or fetch cached) + summary stats
//	GET  /v1/topology/{key}/export      adjacency JSON / Graphviz DOT / edge list
//	GET  /v1/path?key=&src=&dst=&seed=  one shortest up/down path
//	POST /v1/expand                     plan an R-terminal expansion step (§5, Thm 4.2)
//	GET  /v1/faults?key=&links=&seed=   connectivity + routability under random faults
//
// Usage:
//
//	rfcd -addr :8080 -cache 64
//	rfcd -selfcheck        # in-process endpoint smoke test, used by CI
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rfclos/internal/service"
	"rfclos/internal/service/client"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheSize = flag.Int("cache", 64, "topology cache capacity (LRU entries)")
		selfcheck = flag.Bool("selfcheck", false, "run the endpoint smoke test against an in-process server and exit")
	)
	flag.Parse()

	if *selfcheck {
		if err := client.Selfcheck(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rfcd: selfcheck failed:", err)
			os.Exit(1)
		}
		fmt.Println("rfcd: selfcheck passed")
		return
	}

	if err := run(*addr, *cacheSize); err != nil {
		fmt.Fprintln(os.Stderr, "rfcd:", err)
		os.Exit(1)
	}
}

func run(addr string, cacheSize int) error {
	srv := service.New(service.Options{CacheSize: cacheSize})
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("rfcd: serving on %s (cache %d)\n", addr, cacheSize)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("rfcd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
