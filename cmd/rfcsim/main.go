// Command rfcsim runs one virtual cut-through simulation point: a topology,
// a traffic pattern, an offered load and optionally link faults.
//
// Usage examples:
//
//	rfcsim -topo rfc -radix 16 -levels 3 -leaves 128 -pattern uniform -load 0.7
//	rfcsim -topo cft -radix 16 -levels 3 -pattern random-pairing -load 1.0 -faults 200
package main

import (
	"flag"
	"fmt"
	"os"

	"rfclos"
	"rfclos/internal/analysis"
	"rfclos/internal/rng"
)

func main() {
	var (
		topo    = flag.String("topo", "rfc", "topology: rfc | cft | oft")
		radix   = flag.Int("radix", 16, "switch radix (rfc, cft)")
		levels  = flag.Int("levels", 3, "levels")
		leaves  = flag.Int("leaves", 0, "leaf switches N1 (rfc; 0 = sized to the CFT of equal radix)")
		q       = flag.Int("q", 3, "projective plane order (oft)")
		pattern = flag.String("pattern", "uniform", "traffic: uniform | random-pairing | fixed-random")
		load    = flag.Float64("load", 0.5, "offered load in phits/node/cycle")
		warmup  = flag.Int("warmup", 2000, "warm-up cycles")
		cycles  = flag.Int("cycles", 10000, "measured cycles")
		faults  = flag.Int("faults", 0, "random links to remove before simulating")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*topo, *radix, *levels, *leaves, *q, *pattern, *load, *warmup, *cycles, *faults, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "rfcsim:", err)
		os.Exit(1)
	}
}

func run(topo string, radix, levels, leaves, q int, pattern string, load float64, warmup, cycles, faults int, seed uint64) error {
	var (
		c      *rfclos.Clos
		router *rfclos.Router
		err    error
	)
	switch topo {
	case "rfc":
		if leaves == 0 {
			cft, err := rfclos.NewCFT(radix, levels)
			if err != nil {
				return err
			}
			leaves = cft.LevelSize(1)
		}
		c, router, err = rfclos.NewRFC(rfclos.Params{Radix: radix, Levels: levels, Leaves: leaves}, seed)
		if err != nil {
			return err
		}
	case "cft":
		c, err = rfclos.NewCFT(radix, levels)
		if err != nil {
			return err
		}
		router = rfclos.NewRouter(c)
	case "oft":
		c, err = rfclos.NewOFT(q, levels)
		if err != nil {
			return err
		}
		router = rfclos.NewRouter(c)
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}

	if faults > 0 {
		analysis.RemoveRandomLinks(c, faults, rng.New(seed+1))
		router.Rebuild()
		fmt.Printf("# removed %d links; up/down routable: %v\n", faults, router.Routable())
	}

	pat, err := rfclos.NewTraffic(pattern, c.Terminals(), seed+2)
	if err != nil {
		return err
	}
	cfg := rfclos.DefaultSimConfig()
	cfg.WarmupCycles = warmup
	cfg.MeasureCycles = cycles
	cfg.Seed = seed + 3

	fmt.Printf("# %v\n# pattern=%s load=%.3f warmup=%d cycles=%d\n", c, pattern, load, warmup, cycles)
	res := rfclos.Simulate(c, router, pat, load, cfg)
	fmt.Printf("accepted   %.4f phits/node/cycle\n", res.AcceptedLoad)
	fmt.Printf("latency    avg %.1f  p50 %.0f  p95 %.0f  p99 %.0f  max %.0f cycles\n",
		res.AvgLatency, res.P50Latency, res.P95Latency, res.P99Latency, res.MaxLatency)
	fmt.Printf("packets    generated %d  delivered %d  dropped-at-source %d  unroutable %d\n",
		res.Generated, res.Delivered, res.DroppedAtSource, res.UnroutableDrops)
	return nil
}
