// Command rfcsim runs one virtual cut-through simulation point: a topology,
// a traffic pattern, an offered load and optionally link faults.
//
// Usage examples:
//
//	rfcsim -topo rfc -radix 16 -levels 3 -leaves 128 -pattern uniform -load 0.7
//	rfcsim -topo cft -radix 16 -levels 3 -pattern random-pairing -load 1.0 -faults 200
//	rfcsim -topo rfc -radix 16 -levels 3 -pattern uniform -load 0.9 -reps 8 -workers 4
//	rfcsim -topo rfc -radix 36 -levels 3 -leaves 6480 -backend flow -pattern hotspot -load 1.0
//
// With -reps > 1 the point is repeated with independent repetition streams
// on a worker pool and the summary reports mean ± stddev; the numbers are
// identical for any -workers value.
//
// -backend flow swaps the cycle-accurate simulator for the flow-level
// max-min-fair solver (internal/flow): exact per-flow rates at scales the
// packet simulation cannot reach, at the price of abstracting away latency.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"

	"rfclos"
	"rfclos/internal/analysis"
	"rfclos/internal/engine"
	"rfclos/internal/flow"
	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/traffic"
)

func main() {
	var (
		topo    = flag.String("topo", "rfc", "topology: rfc | cft | oft")
		radix   = flag.Int("radix", 16, "switch radix (rfc, cft)")
		levels  = flag.Int("levels", 3, "levels")
		leaves  = flag.Int("leaves", 0, "leaf switches N1 (rfc; 0 = sized to the CFT of equal radix)")
		q       = flag.Int("q", 3, "projective plane order (oft)")
		pattern = flag.String("pattern", "uniform", "traffic: uniform | random-pairing | fixed-random (backend=flow also accepts the matrix names: shift, hotspot, incast, elephant-mice, storm)")
		load    = flag.Float64("load", 0.5, "offered load in phits/node/cycle")
		warmup  = flag.Int("warmup", 2000, "warm-up cycles")
		cycles  = flag.Int("cycles", 10000, "measured cycles")
		faults  = flag.Int("faults", 0, "random links to remove before simulating")
		reps    = flag.Int("reps", 1, "independent repetitions of the point (mean ± stddev when > 1)")
		workers = flag.Int("workers", runtime.NumCPU(), "worker pool size for repetitions (results identical for any value)")
		seed    = flag.Uint64("seed", 1, "random seed")
		backend = flag.String("backend", "cycle", "throughput engine: cycle (packet simulation) | flow (max-min-fair rates)")
	)
	flag.Parse()
	if err := run(*topo, *radix, *levels, *leaves, *q, *pattern, *load,
		*warmup, *cycles, *faults, *reps, *workers, *seed, *backend); err != nil {
		fmt.Fprintln(os.Stderr, "rfcsim:", err)
		os.Exit(1)
	}
}

func run(topo string, radix, levels, leaves, q int, pattern string, load float64,
	warmup, cycles, faults, reps, workers int, seed uint64, backend string) error {
	if seed == 0 {
		seed = 1
	}
	if reps <= 0 {
		reps = 1
	}
	var (
		c      *rfclos.Clos
		router *rfclos.Router
		err    error
	)
	switch topo {
	case "rfc":
		if leaves == 0 {
			cft, err := rfclos.NewCFT(radix, levels)
			if err != nil {
				return err
			}
			leaves = cft.LevelSize(1)
		}
		c, router, err = rfclos.NewRFC(rfclos.Params{Radix: radix, Levels: levels, Leaves: leaves}, seed)
		if err != nil {
			return err
		}
	case "cft":
		c, err = rfclos.NewCFT(radix, levels)
		if err != nil {
			return err
		}
		router = rfclos.NewRouter(c)
	case "oft":
		c, err = rfclos.NewOFT(q, levels)
		if err != nil {
			return err
		}
		router = rfclos.NewRouter(c)
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}

	if faults > 0 {
		analysis.RemoveRandomLinks(c, faults, rng.At(seed, rng.StringCoord("rfcsim/faults")))
		router.Rebuild()
		fmt.Printf("# removed %d links; up/down routable: %v\n", faults, router.Routable())
	}

	if backend == "flow" {
		return runFlow(c, router, pattern, load, reps, workers, seed)
	}
	if backend != "cycle" {
		return fmt.Errorf("unknown backend %q (cycle|flow)", backend)
	}

	fmt.Printf("# %v\n# pattern=%s load=%.3f warmup=%d cycles=%d reps=%d\n",
		c, pattern, load, warmup, cycles, reps)
	// Each repetition draws its traffic pattern and simulator seed from a
	// stream derived from (seed, "rfcsim/run", rep), so the outcome is a
	// pure function of the flags, independent of the worker count.
	results, err := engine.Run(reps, workers, func(rep int) (rfclos.SimResult, error) {
		stream := rng.At(seed, rng.StringCoord("rfcsim/run"), uint64(rep))
		pat, err := traffic.New(pattern, c.Terminals(), stream)
		if err != nil {
			return rfclos.SimResult{}, err
		}
		cfg := rfclos.DefaultSimConfig()
		cfg.WarmupCycles = warmup
		cfg.MeasureCycles = cycles
		cfg.Seed = stream.Uint64()
		return rfclos.Simulate(c, router, pat, load, cfg), nil
	})
	if err != nil {
		return err
	}

	if reps == 1 {
		res := results[0]
		fmt.Printf("accepted   %.4f phits/node/cycle\n", res.AcceptedLoad)
		fmt.Printf("latency    avg %.1f  p50 %.0f  p95 %.0f  p99 %.0f  max %.0f cycles\n",
			res.AvgLatency, res.P50Latency, res.P95Latency, res.P99Latency, res.MaxLatency)
		fmt.Printf("packets    generated %d  delivered %d  dropped-at-source %d  unroutable %d\n",
			res.Generated, res.Delivered, res.DroppedAtSource, res.UnroutableDrops)
		return nil
	}
	var acc, lat, p99 metrics.Summary
	maxLat := 0.0
	for _, res := range results {
		acc.Add(res.AcceptedLoad)
		lat.Add(res.AvgLatency)
		p99.Add(res.P99Latency)
		maxLat = math.Max(maxLat, res.MaxLatency)
	}
	fmt.Printf("accepted   %.4f ± %.4f phits/node/cycle\n", acc.Mean(), acc.StdDev())
	fmt.Printf("latency    avg %.1f ± %.1f  p99 %.0f ± %.0f  max %.0f cycles\n",
		lat.Mean(), lat.StdDev(), p99.Mean(), p99.StdDev(), maxLat)
	return nil
}

// runFlow solves the point on the flow-level max-min-fair backend: the
// pattern becomes a demand matrix scaled by the offered load, and each
// repetition draws matrix and paths from its own (seed, "rfcsim/flow", rep)
// stream. Warm-up and cycle counts do not apply.
func runFlow(c *rfclos.Clos, router *rfclos.Router, pattern string, load float64,
	reps, workers int, seed uint64) error {
	net := flow.NewClos(c, router, nil)
	fmt.Printf("# %v\n# backend=flow pattern=%s load=%.3f reps=%d\n", c, pattern, load, reps)
	var acc, min, jain metrics.Summary
	for rep := 0; rep < reps; rep++ {
		stream := rng.At(seed, rng.StringCoord("rfcsim/flow"), uint64(rep))
		m, err := traffic.NewMatrix(pattern, c.Terminals(), stream)
		if err != nil {
			return err
		}
		m = traffic.ScaleMatrix(m, load)
		res, err := flow.Solve(net, m, flow.Options{Seed: stream.Uint64(), Workers: workers})
		if err != nil {
			return err
		}
		if reps == 1 {
			fmt.Printf("accepted   %.4f per terminal (demand %.4f)\n", res.Accepted, res.Demand/float64(c.Terminals()))
			fmt.Printf("rates      min %.4f  mean %.4f  max %.4f  jain %.4f\n",
				res.MinRate, res.MeanRate, res.MaxRate, res.Jain)
			fmt.Printf("flows      %d routed  %d unroutable  %d rounds  %d saturated links\n",
				res.Flows, res.Unroutable, res.Rounds, res.SatLinks)
			return nil
		}
		acc.Add(res.Accepted)
		min.Add(res.MinRate)
		jain.Add(res.Jain)
	}
	fmt.Printf("accepted   %.4f ± %.4f per terminal\n", acc.Mean(), acc.StdDev())
	fmt.Printf("rates      min %.4f ± %.4f  jain %.4f ± %.4f\n",
		min.Mean(), min.StdDev(), jain.Mean(), jain.StdDev())
	return nil
}
